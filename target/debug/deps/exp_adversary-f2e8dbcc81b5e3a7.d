/root/repo/target/debug/deps/exp_adversary-f2e8dbcc81b5e3a7.d: crates/bench/src/bin/exp_adversary.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adversary-f2e8dbcc81b5e3a7.rmeta: crates/bench/src/bin/exp_adversary.rs Cargo.toml

crates/bench/src/bin/exp_adversary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
