/root/repo/target/debug/deps/fig16_clusters-2408d69f006304ba.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/debug/deps/fig16_clusters-2408d69f006304ba: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
