/root/repo/target/debug/deps/medsen_microfluidics-8149744b3daf597e.d: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_microfluidics-8149744b3daf597e.rmeta: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs Cargo.toml

crates/microfluidics/src/lib.rs:
crates/microfluidics/src/geometry.rs:
crates/microfluidics/src/losses.rs:
crates/microfluidics/src/mixing.rs:
crates/microfluidics/src/particle.rs:
crates/microfluidics/src/pump.rs:
crates/microfluidics/src/sample.rs:
crates/microfluidics/src/stochastic.rs:
crates/microfluidics/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
