/root/repo/target/debug/deps/ext_phase_auth-54512285b5f53565.d: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

/root/repo/target/debug/deps/libext_phase_auth-54512285b5f53565.rmeta: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

crates/bench/src/bin/ext_phase_auth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
