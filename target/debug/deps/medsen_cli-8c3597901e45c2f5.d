/root/repo/target/debug/deps/medsen_cli-8c3597901e45c2f5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cli-8c3597901e45c2f5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
