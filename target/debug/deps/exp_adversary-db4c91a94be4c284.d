/root/repo/target/debug/deps/exp_adversary-db4c91a94be4c284.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/debug/deps/exp_adversary-db4c91a94be4c284: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
