/root/repo/target/debug/deps/practitioner_sharing-e1df9a2c8b9c8aff.d: tests/practitioner_sharing.rs

/root/repo/target/debug/deps/practitioner_sharing-e1df9a2c8b9c8aff: tests/practitioner_sharing.rs

tests/practitioner_sharing.rs:
