/root/repo/target/debug/deps/medsen_cloud-17249f4f9ee01f23.d: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/debug/deps/medsen_cloud-17249f4f9ee01f23: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

crates/cloud/src/lib.rs:
crates/cloud/src/adversary.rs:
crates/cloud/src/api.rs:
crates/cloud/src/auth.rs:
crates/cloud/src/server.rs:
crates/cloud/src/service.rs:
crates/cloud/src/storage.rs:
