/root/repo/target/debug/deps/threat_model-4e8c83b3a098db7c.d: tests/threat_model.rs

/root/repo/target/debug/deps/threat_model-4e8c83b3a098db7c: tests/threat_model.rs

tests/threat_model.rs:
