/root/repo/target/debug/deps/threat_model-ce3c13e76124c76f.d: tests/threat_model.rs Cargo.toml

/root/repo/target/debug/deps/libthreat_model-ce3c13e76124c76f.rmeta: tests/threat_model.rs Cargo.toml

tests/threat_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
