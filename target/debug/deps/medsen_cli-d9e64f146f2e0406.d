/root/repo/target/debug/deps/medsen_cli-d9e64f146f2e0406.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-d9e64f146f2e0406: crates/cli/src/main.rs

crates/cli/src/main.rs:
