/root/repo/target/debug/deps/medsen_gateway-9fa3547999723cfe.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/debug/deps/medsen_gateway-9fa3547999723cfe: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
