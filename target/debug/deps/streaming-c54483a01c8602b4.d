/root/repo/target/debug/deps/streaming-c54483a01c8602b4.d: crates/bench/benches/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-c54483a01c8602b4.rmeta: crates/bench/benches/streaming.rs Cargo.toml

crates/bench/benches/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
