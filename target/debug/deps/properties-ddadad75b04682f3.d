/root/repo/target/debug/deps/properties-ddadad75b04682f3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ddadad75b04682f3: tests/properties.rs

tests/properties.rs:
