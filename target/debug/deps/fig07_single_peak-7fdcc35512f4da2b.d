/root/repo/target/debug/deps/fig07_single_peak-7fdcc35512f4da2b.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/debug/deps/fig07_single_peak-7fdcc35512f4da2b: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
