/root/repo/target/debug/deps/fig08_five_peaks-f552ef75a0cae6a7.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/debug/deps/fig08_five_peaks-f552ef75a0cae6a7: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
