/root/repo/target/debug/deps/proptest-163d0be4c2295540.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-163d0be4c2295540: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
