/root/repo/target/debug/deps/medsen_impedance-f94458f57b047a45.d: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_impedance-f94458f57b047a45.rmeta: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs Cargo.toml

crates/impedance/src/lib.rs:
crates/impedance/src/circuit.rs:
crates/impedance/src/excitation.rs:
crates/impedance/src/lockin.rs:
crates/impedance/src/noise.rs:
crates/impedance/src/pulse.rs:
crates/impedance/src/synth.rs:
crates/impedance/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
