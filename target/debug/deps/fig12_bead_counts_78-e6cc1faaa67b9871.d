/root/repo/target/debug/deps/fig12_bead_counts_78-e6cc1faaa67b9871.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/debug/deps/fig12_bead_counts_78-e6cc1faaa67b9871: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
