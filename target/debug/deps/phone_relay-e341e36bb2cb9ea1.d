/root/repo/target/debug/deps/phone_relay-e341e36bb2cb9ea1.d: tests/phone_relay.rs

/root/repo/target/debug/deps/phone_relay-e341e36bb2cb9ea1: tests/phone_relay.rs

tests/phone_relay.rs:
