/root/repo/target/debug/deps/fig13_bead_counts_358-b0b5ea77ab961aba.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/debug/deps/fig13_bead_counts_358-b0b5ea77ab961aba: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
