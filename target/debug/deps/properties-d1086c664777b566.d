/root/repo/target/debug/deps/properties-d1086c664777b566.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d1086c664777b566.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
