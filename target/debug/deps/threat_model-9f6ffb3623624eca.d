/root/repo/target/debug/deps/threat_model-9f6ffb3623624eca.d: tests/threat_model.rs

/root/repo/target/debug/deps/threat_model-9f6ffb3623624eca: tests/threat_model.rs

tests/threat_model.rs:
