/root/repo/target/debug/deps/medsen-6ed35b0f1542cd69.d: src/lib.rs

/root/repo/target/debug/deps/libmedsen-6ed35b0f1542cd69.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsen-6ed35b0f1542cd69.rmeta: src/lib.rs

src/lib.rs:
