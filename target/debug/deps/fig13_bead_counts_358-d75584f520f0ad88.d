/root/repo/target/debug/deps/fig13_bead_counts_358-d75584f520f0ad88.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/debug/deps/fig13_bead_counts_358-d75584f520f0ad88: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
