/root/repo/target/debug/deps/cli-216b27af16f98edf.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-216b27af16f98edf.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_medsen-cli=placeholder:medsen-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
