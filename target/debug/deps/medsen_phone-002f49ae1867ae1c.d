/root/repo/target/debug/deps/medsen_phone-002f49ae1867ae1c.d: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/debug/deps/libmedsen_phone-002f49ae1867ae1c.rlib: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/debug/deps/libmedsen_phone-002f49ae1867ae1c.rmeta: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

crates/phone/src/lib.rs:
crates/phone/src/app.rs:
crates/phone/src/compress.rs:
crates/phone/src/csv.rs:
crates/phone/src/frame.rs:
crates/phone/src/json.rs:
crates/phone/src/network.rs:
crates/phone/src/profile.rs:
