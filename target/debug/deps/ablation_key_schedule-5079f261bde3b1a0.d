/root/repo/target/debug/deps/ablation_key_schedule-5079f261bde3b1a0.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/debug/deps/ablation_key_schedule-5079f261bde3b1a0: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
