/root/repo/target/debug/deps/medsen_cli-27d515d674e6c68a.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/medsen_cli-27d515d674e6c68a: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
