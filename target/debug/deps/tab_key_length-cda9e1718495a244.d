/root/repo/target/debug/deps/tab_key_length-cda9e1718495a244.d: crates/bench/src/bin/tab_key_length.rs Cargo.toml

/root/repo/target/debug/deps/libtab_key_length-cda9e1718495a244.rmeta: crates/bench/src/bin/tab_key_length.rs Cargo.toml

crates/bench/src/bin/tab_key_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
