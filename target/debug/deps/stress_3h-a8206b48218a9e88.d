/root/repo/target/debug/deps/stress_3h-a8206b48218a9e88.d: crates/bench/src/bin/stress_3h.rs Cargo.toml

/root/repo/target/debug/deps/libstress_3h-a8206b48218a9e88.rmeta: crates/bench/src/bin/stress_3h.rs Cargo.toml

crates/bench/src/bin/stress_3h.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
