/root/repo/target/debug/deps/fig14_perf-785525567f02cc13.d: crates/bench/src/bin/fig14_perf.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_perf-785525567f02cc13.rmeta: crates/bench/src/bin/fig14_perf.rs Cargo.toml

crates/bench/src/bin/fig14_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
