/root/repo/target/debug/deps/medsen-6a68f4d018d48505.d: src/lib.rs

/root/repo/target/debug/deps/libmedsen-6a68f4d018d48505.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsen-6a68f4d018d48505.rmeta: src/lib.rs

src/lib.rs:
