/root/repo/target/debug/deps/fig08_five_peaks-30b31f5fe8e9596b.d: crates/bench/src/bin/fig08_five_peaks.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_five_peaks-30b31f5fe8e9596b.rmeta: crates/bench/src/bin/fig08_five_peaks.rs Cargo.toml

crates/bench/src/bin/fig08_five_peaks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
