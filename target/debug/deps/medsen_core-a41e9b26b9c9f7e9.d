/root/repo/target/debug/deps/medsen_core-a41e9b26b9c9f7e9.d: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_core-a41e9b26b9c9f7e9.rmeta: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/diagnostics.rs:
crates/core/src/enrollment.rs:
crates/core/src/password.rs:
crates/core/src/pipeline.rs:
crates/core/src/sharing.rs:
crates/core/src/threat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
