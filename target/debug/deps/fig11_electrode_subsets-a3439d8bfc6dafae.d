/root/repo/target/debug/deps/fig11_electrode_subsets-a3439d8bfc6dafae.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/debug/deps/fig11_electrode_subsets-a3439d8bfc6dafae: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
