/root/repo/target/debug/deps/medsen_gateway-fd3a65a9990f1230.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_gateway-fd3a65a9990f1230.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs Cargo.toml

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
