/root/repo/target/debug/deps/fig11_electrode_subsets-511c2411ba255c3d.d: crates/bench/src/bin/fig11_electrode_subsets.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_electrode_subsets-511c2411ba255c3d.rmeta: crates/bench/src/bin/fig11_electrode_subsets.rs Cargo.toml

crates/bench/src/bin/fig11_electrode_subsets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
