/root/repo/target/debug/deps/keygen-58fae6b012773978.d: crates/bench/benches/keygen.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen-58fae6b012773978.rmeta: crates/bench/benches/keygen.rs Cargo.toml

crates/bench/benches/keygen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
