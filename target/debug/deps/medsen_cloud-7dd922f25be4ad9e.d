/root/repo/target/debug/deps/medsen_cloud-7dd922f25be4ad9e.d: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/debug/deps/libmedsen_cloud-7dd922f25be4ad9e.rlib: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/debug/deps/libmedsen_cloud-7dd922f25be4ad9e.rmeta: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

crates/cloud/src/lib.rs:
crates/cloud/src/adversary.rs:
crates/cloud/src/api.rs:
crates/cloud/src/auth.rs:
crates/cloud/src/server.rs:
crates/cloud/src/service.rs:
crates/cloud/src/storage.rs:
