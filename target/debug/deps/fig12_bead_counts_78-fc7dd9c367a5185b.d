/root/repo/target/debug/deps/fig12_bead_counts_78-fc7dd9c367a5185b.d: crates/bench/src/bin/fig12_bead_counts_78.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_bead_counts_78-fc7dd9c367a5185b.rmeta: crates/bench/src/bin/fig12_bead_counts_78.rs Cargo.toml

crates/bench/src/bin/fig12_bead_counts_78.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
