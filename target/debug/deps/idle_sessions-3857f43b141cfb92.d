/root/repo/target/debug/deps/idle_sessions-3857f43b141cfb92.d: crates/runtime/tests/idle_sessions.rs

/root/repo/target/debug/deps/idle_sessions-3857f43b141cfb92: crates/runtime/tests/idle_sessions.rs

crates/runtime/tests/idle_sessions.rs:
