/root/repo/target/debug/deps/fig15_frequency_response-f6b9a4fb391469d4.d: crates/bench/src/bin/fig15_frequency_response.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_frequency_response-f6b9a4fb391469d4.rmeta: crates/bench/src/bin/fig15_frequency_response.rs Cargo.toml

crates/bench/src/bin/fig15_frequency_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
