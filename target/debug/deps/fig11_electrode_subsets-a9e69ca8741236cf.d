/root/repo/target/debug/deps/fig11_electrode_subsets-a9e69ca8741236cf.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/debug/deps/fig11_electrode_subsets-a9e69ca8741236cf: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
