/root/repo/target/debug/deps/medsen_cli-6b040dc09f0343f8.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cli-6b040dc09f0343f8.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
