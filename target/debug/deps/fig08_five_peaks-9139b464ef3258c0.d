/root/repo/target/debug/deps/fig08_five_peaks-9139b464ef3258c0.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/debug/deps/fig08_five_peaks-9139b464ef3258c0: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
