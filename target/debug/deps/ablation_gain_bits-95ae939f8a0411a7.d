/root/repo/target/debug/deps/ablation_gain_bits-95ae939f8a0411a7.d: crates/bench/src/bin/ablation_gain_bits.rs Cargo.toml

/root/repo/target/debug/deps/libablation_gain_bits-95ae939f8a0411a7.rmeta: crates/bench/src/bin/ablation_gain_bits.rs Cargo.toml

crates/bench/src/bin/ablation_gain_bits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
