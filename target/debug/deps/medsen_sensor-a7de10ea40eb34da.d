/root/repo/target/debug/deps/medsen_sensor-a7de10ea40eb34da.d: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/debug/deps/medsen_sensor-a7de10ea40eb34da: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

crates/sensor/src/lib.rs:
crates/sensor/src/acquisition.rs:
crates/sensor/src/array.rs:
crates/sensor/src/controller.rs:
crates/sensor/src/decrypt.rs:
crates/sensor/src/keying.rs:
crates/sensor/src/mux.rs:
crates/sensor/src/tcb.rs:
