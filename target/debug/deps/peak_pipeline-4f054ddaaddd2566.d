/root/repo/target/debug/deps/peak_pipeline-4f054ddaaddd2566.d: crates/bench/benches/peak_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpeak_pipeline-4f054ddaaddd2566.rmeta: crates/bench/benches/peak_pipeline.rs Cargo.toml

crates/bench/benches/peak_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
