/root/repo/target/debug/deps/medsen_gateway-39f8456fc1edadee.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/debug/deps/libmedsen_gateway-39f8456fc1edadee.rlib: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/debug/deps/libmedsen_gateway-39f8456fc1edadee.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
