/root/repo/target/debug/deps/fig15_frequency_response-418f920c8daf3c65.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/debug/deps/fig15_frequency_response-418f920c8daf3c65: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
