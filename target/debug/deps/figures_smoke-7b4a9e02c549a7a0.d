/root/repo/target/debug/deps/figures_smoke-7b4a9e02c549a7a0.d: tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-7b4a9e02c549a7a0.rmeta: tests/figures_smoke.rs Cargo.toml

tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
