/root/repo/target/debug/deps/ablation_key_schedule-eb1d4b906065472c.d: crates/bench/src/bin/ablation_key_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libablation_key_schedule-eb1d4b906065472c.rmeta: crates/bench/src/bin/ablation_key_schedule.rs Cargo.toml

crates/bench/src/bin/ablation_key_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
