/root/repo/target/debug/deps/tab_key_length-199ea4ee6b5c53bd.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/debug/deps/tab_key_length-199ea4ee6b5c53bd: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
