/root/repo/target/debug/deps/medsen_cloud-82174e8e598b5c68.d: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cloud-82174e8e598b5c68.rmeta: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs Cargo.toml

crates/cloud/src/lib.rs:
crates/cloud/src/adversary.rs:
crates/cloud/src/api.rs:
crates/cloud/src/auth.rs:
crates/cloud/src/server.rs:
crates/cloud/src/service.rs:
crates/cloud/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
