/root/repo/target/debug/deps/medsen_cli-b52bdd3580aed5c8.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-b52bdd3580aed5c8.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-b52bdd3580aed5c8.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
