/root/repo/target/debug/deps/properties-208e392a7ad75d8d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-208e392a7ad75d8d: tests/properties.rs

tests/properties.rs:
