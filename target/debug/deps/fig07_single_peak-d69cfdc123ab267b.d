/root/repo/target/debug/deps/fig07_single_peak-d69cfdc123ab267b.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/debug/deps/fig07_single_peak-d69cfdc123ab267b: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
