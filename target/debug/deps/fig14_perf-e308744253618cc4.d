/root/repo/target/debug/deps/fig14_perf-e308744253618cc4.d: crates/bench/src/bin/fig14_perf.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_perf-e308744253618cc4.rmeta: crates/bench/src/bin/fig14_perf.rs Cargo.toml

crates/bench/src/bin/fig14_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
