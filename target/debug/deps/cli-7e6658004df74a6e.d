/root/repo/target/debug/deps/cli-7e6658004df74a6e.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-7e6658004df74a6e.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_medsen-cli=placeholder:medsen-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
