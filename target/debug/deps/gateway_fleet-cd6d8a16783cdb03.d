/root/repo/target/debug/deps/gateway_fleet-cd6d8a16783cdb03.d: tests/gateway_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libgateway_fleet-cd6d8a16783cdb03.rmeta: tests/gateway_fleet.rs Cargo.toml

tests/gateway_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
