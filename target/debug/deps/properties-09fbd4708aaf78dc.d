/root/repo/target/debug/deps/properties-09fbd4708aaf78dc.d: crates/sensor/tests/properties.rs

/root/repo/target/debug/deps/properties-09fbd4708aaf78dc: crates/sensor/tests/properties.rs

crates/sensor/tests/properties.rs:
