/root/repo/target/debug/deps/exp_adversary-e84016ae24cd8e9d.d: crates/bench/src/bin/exp_adversary.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adversary-e84016ae24cd8e9d.rmeta: crates/bench/src/bin/exp_adversary.rs Cargo.toml

crates/bench/src/bin/exp_adversary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
