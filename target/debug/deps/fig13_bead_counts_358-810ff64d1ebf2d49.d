/root/repo/target/debug/deps/fig13_bead_counts_358-810ff64d1ebf2d49.d: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_bead_counts_358-810ff64d1ebf2d49.rmeta: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

crates/bench/src/bin/fig13_bead_counts_358.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
