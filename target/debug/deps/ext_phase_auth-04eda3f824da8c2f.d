/root/repo/target/debug/deps/ext_phase_auth-04eda3f824da8c2f.d: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

/root/repo/target/debug/deps/libext_phase_auth-04eda3f824da8c2f.rmeta: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

crates/bench/src/bin/ext_phase_auth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
