/root/repo/target/debug/deps/medsen_cli-7fb46452f7edb1c3.d: crates/cli/src/lib.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cli-7fb46452f7edb1c3.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
