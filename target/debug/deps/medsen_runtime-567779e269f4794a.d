/root/repo/target/debug/deps/medsen_runtime-567779e269f4794a.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_runtime-567779e269f4794a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/task.rs:
crates/runtime/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
