/root/repo/target/debug/deps/medsen_dsp-9f627a443de713cc.d: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_dsp-9f627a443de713cc.rmeta: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/classify.rs:
crates/dsp/src/detrend.rs:
crates/dsp/src/features.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/peaks.rs:
crates/dsp/src/polyfit.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
