/root/repo/target/debug/deps/exp_adversary-a4fe55be330a62bd.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/debug/deps/exp_adversary-a4fe55be330a62bd: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
