/root/repo/target/debug/deps/cli-01e8e199ad93a467.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-01e8e199ad93a467: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_medsen-cli=/root/repo/target/debug/medsen-cli
