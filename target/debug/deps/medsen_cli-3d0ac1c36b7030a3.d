/root/repo/target/debug/deps/medsen_cli-3d0ac1c36b7030a3.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-3d0ac1c36b7030a3: crates/cli/src/main.rs

crates/cli/src/main.rs:
