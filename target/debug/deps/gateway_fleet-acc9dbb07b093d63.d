/root/repo/target/debug/deps/gateway_fleet-acc9dbb07b093d63.d: tests/gateway_fleet.rs

/root/repo/target/debug/deps/gateway_fleet-acc9dbb07b093d63: tests/gateway_fleet.rs

tests/gateway_fleet.rs:
