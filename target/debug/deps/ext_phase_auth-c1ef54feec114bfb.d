/root/repo/target/debug/deps/ext_phase_auth-c1ef54feec114bfb.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/debug/deps/ext_phase_auth-c1ef54feec114bfb: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
