/root/repo/target/debug/deps/fig14_perf-ef5675cc7a987460.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/debug/deps/fig14_perf-ef5675cc7a987460: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
