/root/repo/target/debug/deps/medsen_cli-acf1bf5f7bac9c39.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-acf1bf5f7bac9c39: crates/cli/src/main.rs

crates/cli/src/main.rs:
