/root/repo/target/debug/deps/fig08_five_peaks-07f5d4f5cbaa1bdf.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/debug/deps/fig08_five_peaks-07f5d4f5cbaa1bdf: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
