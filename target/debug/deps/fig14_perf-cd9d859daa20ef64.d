/root/repo/target/debug/deps/fig14_perf-cd9d859daa20ef64.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/debug/deps/fig14_perf-cd9d859daa20ef64: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
