/root/repo/target/debug/deps/medsen_impedance-82cf5b8c83498e03.d: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/debug/deps/libmedsen_impedance-82cf5b8c83498e03.rlib: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/debug/deps/libmedsen_impedance-82cf5b8c83498e03.rmeta: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

crates/impedance/src/lib.rs:
crates/impedance/src/circuit.rs:
crates/impedance/src/excitation.rs:
crates/impedance/src/lockin.rs:
crates/impedance/src/noise.rs:
crates/impedance/src/pulse.rs:
crates/impedance/src/synth.rs:
crates/impedance/src/trace.rs:
