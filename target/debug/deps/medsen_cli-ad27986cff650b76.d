/root/repo/target/debug/deps/medsen_cli-ad27986cff650b76.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-ad27986cff650b76: crates/cli/src/main.rs

crates/cli/src/main.rs:
