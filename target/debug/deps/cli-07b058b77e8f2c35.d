/root/repo/target/debug/deps/cli-07b058b77e8f2c35.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-07b058b77e8f2c35: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_medsen-cli=/root/repo/target/debug/medsen-cli
