/root/repo/target/debug/deps/practitioner_sharing-074331b9641a1a2f.d: tests/practitioner_sharing.rs

/root/repo/target/debug/deps/practitioner_sharing-074331b9641a1a2f: tests/practitioner_sharing.rs

tests/practitioner_sharing.rs:
