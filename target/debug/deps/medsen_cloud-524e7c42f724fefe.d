/root/repo/target/debug/deps/medsen_cloud-524e7c42f724fefe.d: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/debug/deps/libmedsen_cloud-524e7c42f724fefe.rlib: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/debug/deps/libmedsen_cloud-524e7c42f724fefe.rmeta: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

crates/cloud/src/lib.rs:
crates/cloud/src/adversary.rs:
crates/cloud/src/api.rs:
crates/cloud/src/auth.rs:
crates/cloud/src/server.rs:
crates/cloud/src/service.rs:
crates/cloud/src/storage.rs:
