/root/repo/target/debug/deps/medsen_units-e859dd1d192277ea.d: crates/units/src/lib.rs crates/units/src/quantity.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_units-e859dd1d192277ea.rmeta: crates/units/src/lib.rs crates/units/src/quantity.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/quantity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
