/root/repo/target/debug/deps/fig07_single_peak-529ceafe13edab7b.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/debug/deps/fig07_single_peak-529ceafe13edab7b: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
