/root/repo/target/debug/deps/medsen_sensor-1952edd6d66dd824.d: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/debug/deps/libmedsen_sensor-1952edd6d66dd824.rlib: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/debug/deps/libmedsen_sensor-1952edd6d66dd824.rmeta: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

crates/sensor/src/lib.rs:
crates/sensor/src/acquisition.rs:
crates/sensor/src/array.rs:
crates/sensor/src/controller.rs:
crates/sensor/src/decrypt.rs:
crates/sensor/src/keying.rs:
crates/sensor/src/mux.rs:
crates/sensor/src/tcb.rs:
