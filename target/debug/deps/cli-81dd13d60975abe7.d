/root/repo/target/debug/deps/cli-81dd13d60975abe7.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-81dd13d60975abe7: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_medsen-cli=/root/repo/target/debug/medsen-cli
