/root/repo/target/debug/deps/exp_auth_accuracy-c291adcc8babeeb4.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/debug/deps/exp_auth_accuracy-c291adcc8babeeb4: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
