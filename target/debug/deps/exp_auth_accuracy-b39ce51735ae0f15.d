/root/repo/target/debug/deps/exp_auth_accuracy-b39ce51735ae0f15.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/debug/deps/exp_auth_accuracy-b39ce51735ae0f15: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
