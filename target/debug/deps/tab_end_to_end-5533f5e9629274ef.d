/root/repo/target/debug/deps/tab_end_to_end-5533f5e9629274ef.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/debug/deps/tab_end_to_end-5533f5e9629274ef: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
