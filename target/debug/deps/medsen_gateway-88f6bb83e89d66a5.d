/root/repo/target/debug/deps/medsen_gateway-88f6bb83e89d66a5.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/debug/deps/libmedsen_gateway-88f6bb83e89d66a5.rlib: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/debug/deps/libmedsen_gateway-88f6bb83e89d66a5.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
