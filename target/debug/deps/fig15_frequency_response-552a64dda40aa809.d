/root/repo/target/debug/deps/fig15_frequency_response-552a64dda40aa809.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/debug/deps/fig15_frequency_response-552a64dda40aa809: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
