/root/repo/target/debug/deps/failure_injection-ad051899b2da3bca.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-ad051899b2da3bca: tests/failure_injection.rs

tests/failure_injection.rs:
