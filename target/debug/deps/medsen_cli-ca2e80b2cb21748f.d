/root/repo/target/debug/deps/medsen_cli-ca2e80b2cb21748f.d: crates/cli/src/lib.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cli-ca2e80b2cb21748f.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
