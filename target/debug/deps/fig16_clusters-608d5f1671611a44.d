/root/repo/target/debug/deps/fig16_clusters-608d5f1671611a44.d: crates/bench/src/bin/fig16_clusters.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_clusters-608d5f1671611a44.rmeta: crates/bench/src/bin/fig16_clusters.rs Cargo.toml

crates/bench/src/bin/fig16_clusters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
