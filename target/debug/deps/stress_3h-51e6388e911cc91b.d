/root/repo/target/debug/deps/stress_3h-51e6388e911cc91b.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/debug/deps/stress_3h-51e6388e911cc91b: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
