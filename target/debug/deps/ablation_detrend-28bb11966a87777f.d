/root/repo/target/debug/deps/ablation_detrend-28bb11966a87777f.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/debug/deps/ablation_detrend-28bb11966a87777f: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
