/root/repo/target/debug/deps/medsen-524df4dc2e16c754.d: src/lib.rs

/root/repo/target/debug/deps/medsen-524df4dc2e16c754: src/lib.rs

src/lib.rs:
