/root/repo/target/debug/deps/keygen-7148e248e9d569f5.d: crates/bench/benches/keygen.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen-7148e248e9d569f5.rmeta: crates/bench/benches/keygen.rs Cargo.toml

crates/bench/benches/keygen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
