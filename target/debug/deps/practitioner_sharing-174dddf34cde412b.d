/root/repo/target/debug/deps/practitioner_sharing-174dddf34cde412b.d: tests/practitioner_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libpractitioner_sharing-174dddf34cde412b.rmeta: tests/practitioner_sharing.rs Cargo.toml

tests/practitioner_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
