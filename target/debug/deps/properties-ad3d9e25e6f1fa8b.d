/root/repo/target/debug/deps/properties-ad3d9e25e6f1fa8b.d: crates/microfluidics/tests/properties.rs

/root/repo/target/debug/deps/properties-ad3d9e25e6f1fa8b: crates/microfluidics/tests/properties.rs

crates/microfluidics/tests/properties.rs:
