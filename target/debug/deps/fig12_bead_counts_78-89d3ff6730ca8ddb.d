/root/repo/target/debug/deps/fig12_bead_counts_78-89d3ff6730ca8ddb.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/debug/deps/fig12_bead_counts_78-89d3ff6730ca8ddb: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
