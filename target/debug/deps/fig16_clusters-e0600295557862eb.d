/root/repo/target/debug/deps/fig16_clusters-e0600295557862eb.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/debug/deps/fig16_clusters-e0600295557862eb: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
