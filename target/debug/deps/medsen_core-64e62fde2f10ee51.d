/root/repo/target/debug/deps/medsen_core-64e62fde2f10ee51.d: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

/root/repo/target/debug/deps/medsen_core-64e62fde2f10ee51: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

crates/core/src/lib.rs:
crates/core/src/diagnostics.rs:
crates/core/src/enrollment.rs:
crates/core/src/password.rs:
crates/core/src/pipeline.rs:
crates/core/src/sharing.rs:
crates/core/src/threat.rs:
