/root/repo/target/debug/deps/end_to_end-1be50e861ae1848a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1be50e861ae1848a: tests/end_to_end.rs

tests/end_to_end.rs:
