/root/repo/target/debug/deps/medsen_cli-bd8ebb574b3929e4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-bd8ebb574b3929e4: crates/cli/src/main.rs

crates/cli/src/main.rs:
