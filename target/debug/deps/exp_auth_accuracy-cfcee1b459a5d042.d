/root/repo/target/debug/deps/exp_auth_accuracy-cfcee1b459a5d042.d: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_auth_accuracy-cfcee1b459a5d042.rmeta: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

crates/bench/src/bin/exp_auth_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
