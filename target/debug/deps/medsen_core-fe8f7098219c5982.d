/root/repo/target/debug/deps/medsen_core-fe8f7098219c5982.d: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

/root/repo/target/debug/deps/libmedsen_core-fe8f7098219c5982.rlib: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

/root/repo/target/debug/deps/libmedsen_core-fe8f7098219c5982.rmeta: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

crates/core/src/lib.rs:
crates/core/src/diagnostics.rs:
crates/core/src/enrollment.rs:
crates/core/src/password.rs:
crates/core/src/pipeline.rs:
crates/core/src/sharing.rs:
crates/core/src/threat.rs:
