/root/repo/target/debug/deps/medsen_runtime-d0c64ebd98df84ec.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

/root/repo/target/debug/deps/libmedsen_runtime-d0c64ebd98df84ec.rlib: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

/root/repo/target/debug/deps/libmedsen_runtime-d0c64ebd98df84ec.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/task.rs:
crates/runtime/src/timer.rs:
