/root/repo/target/debug/deps/medsen-5bc422594d55cbb5.d: src/lib.rs

/root/repo/target/debug/deps/libmedsen-5bc422594d55cbb5.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsen-5bc422594d55cbb5.rmeta: src/lib.rs

src/lib.rs:
