/root/repo/target/debug/deps/idle_sessions-970061c9c4334425.d: crates/bench/benches/idle_sessions.rs Cargo.toml

/root/repo/target/debug/deps/libidle_sessions-970061c9c4334425.rmeta: crates/bench/benches/idle_sessions.rs Cargo.toml

crates/bench/benches/idle_sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
