/root/repo/target/debug/deps/medsen_dsp-5b05ff7ad4d256d6.d: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

/root/repo/target/debug/deps/libmedsen_dsp-5b05ff7ad4d256d6.rlib: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

/root/repo/target/debug/deps/libmedsen_dsp-5b05ff7ad4d256d6.rmeta: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

crates/dsp/src/lib.rs:
crates/dsp/src/classify.rs:
crates/dsp/src/detrend.rs:
crates/dsp/src/features.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/peaks.rs:
crates/dsp/src/polyfit.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/streaming.rs:
