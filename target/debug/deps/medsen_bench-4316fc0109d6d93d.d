/root/repo/target/debug/deps/medsen_bench-4316fc0109d6d93d.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation_detrend.rs crates/bench/src/experiments/ablation_gains.rs crates/bench/src/experiments/ablation_keys.rs crates/bench/src/experiments/adversary.rs crates/bench/src/experiments/auth_accuracy.rs crates/bench/src/experiments/bead_counts.rs crates/bench/src/experiments/end_to_end.rs crates/bench/src/experiments/ext_phase.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/key_length.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_bench-4316fc0109d6d93d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation_detrend.rs crates/bench/src/experiments/ablation_gains.rs crates/bench/src/experiments/ablation_keys.rs crates/bench/src/experiments/adversary.rs crates/bench/src/experiments/auth_accuracy.rs crates/bench/src/experiments/bead_counts.rs crates/bench/src/experiments/end_to_end.rs crates/bench/src/experiments/ext_phase.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/key_length.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation_detrend.rs:
crates/bench/src/experiments/ablation_gains.rs:
crates/bench/src/experiments/ablation_keys.rs:
crates/bench/src/experiments/adversary.rs:
crates/bench/src/experiments/auth_accuracy.rs:
crates/bench/src/experiments/bead_counts.rs:
crates/bench/src/experiments/end_to_end.rs:
crates/bench/src/experiments/ext_phase.rs:
crates/bench/src/experiments/fig07.rs:
crates/bench/src/experiments/fig08.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig14.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig16.rs:
crates/bench/src/experiments/key_length.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
