/root/repo/target/debug/deps/medsen_gateway-9cf537b51dd5a088.d: crates/gateway/src/lib.rs

/root/repo/target/debug/deps/medsen_gateway-9cf537b51dd5a088: crates/gateway/src/lib.rs

crates/gateway/src/lib.rs:
