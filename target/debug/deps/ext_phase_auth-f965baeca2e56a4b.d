/root/repo/target/debug/deps/ext_phase_auth-f965baeca2e56a4b.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/debug/deps/ext_phase_auth-f965baeca2e56a4b: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
