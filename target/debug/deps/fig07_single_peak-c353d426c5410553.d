/root/repo/target/debug/deps/fig07_single_peak-c353d426c5410553.d: crates/bench/src/bin/fig07_single_peak.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_single_peak-c353d426c5410553.rmeta: crates/bench/src/bin/fig07_single_peak.rs Cargo.toml

crates/bench/src/bin/fig07_single_peak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
