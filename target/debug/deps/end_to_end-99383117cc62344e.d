/root/repo/target/debug/deps/end_to_end-99383117cc62344e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-99383117cc62344e: tests/end_to_end.rs

tests/end_to_end.rs:
