/root/repo/target/debug/deps/fig11_electrode_subsets-00637d7c48205ae7.d: crates/bench/src/bin/fig11_electrode_subsets.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_electrode_subsets-00637d7c48205ae7.rmeta: crates/bench/src/bin/fig11_electrode_subsets.rs Cargo.toml

crates/bench/src/bin/fig11_electrode_subsets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
