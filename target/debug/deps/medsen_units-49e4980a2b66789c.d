/root/repo/target/debug/deps/medsen_units-49e4980a2b66789c.d: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/debug/deps/libmedsen_units-49e4980a2b66789c.rlib: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/debug/deps/libmedsen_units-49e4980a2b66789c.rmeta: crates/units/src/lib.rs crates/units/src/quantity.rs

crates/units/src/lib.rs:
crates/units/src/quantity.rs:
