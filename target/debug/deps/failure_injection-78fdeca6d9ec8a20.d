/root/repo/target/debug/deps/failure_injection-78fdeca6d9ec8a20.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-78fdeca6d9ec8a20: tests/failure_injection.rs

tests/failure_injection.rs:
