/root/repo/target/debug/deps/medsen_units-a75257f470308b0f.d: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/debug/deps/medsen_units-a75257f470308b0f: crates/units/src/lib.rs crates/units/src/quantity.rs

crates/units/src/lib.rs:
crates/units/src/quantity.rs:
