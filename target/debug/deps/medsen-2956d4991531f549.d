/root/repo/target/debug/deps/medsen-2956d4991531f549.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen-2956d4991531f549.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
