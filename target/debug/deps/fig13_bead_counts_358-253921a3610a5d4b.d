/root/repo/target/debug/deps/fig13_bead_counts_358-253921a3610a5d4b.d: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_bead_counts_358-253921a3610a5d4b.rmeta: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

crates/bench/src/bin/fig13_bead_counts_358.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
