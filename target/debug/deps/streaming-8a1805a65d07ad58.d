/root/repo/target/debug/deps/streaming-8a1805a65d07ad58.d: crates/bench/benches/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-8a1805a65d07ad58.rmeta: crates/bench/benches/streaming.rs Cargo.toml

crates/bench/benches/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
