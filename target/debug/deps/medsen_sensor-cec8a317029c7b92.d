/root/repo/target/debug/deps/medsen_sensor-cec8a317029c7b92.d: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_sensor-cec8a317029c7b92.rmeta: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs Cargo.toml

crates/sensor/src/lib.rs:
crates/sensor/src/acquisition.rs:
crates/sensor/src/array.rs:
crates/sensor/src/controller.rs:
crates/sensor/src/decrypt.rs:
crates/sensor/src/keying.rs:
crates/sensor/src/mux.rs:
crates/sensor/src/tcb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
