/root/repo/target/debug/deps/fig07_single_peak-8842fd22aa2b8c86.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/debug/deps/fig07_single_peak-8842fd22aa2b8c86: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
