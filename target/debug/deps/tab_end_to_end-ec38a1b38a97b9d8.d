/root/repo/target/debug/deps/tab_end_to_end-ec38a1b38a97b9d8.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/debug/deps/tab_end_to_end-ec38a1b38a97b9d8: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
