/root/repo/target/debug/deps/gateway_throughput-7811941d438cbab8.d: crates/bench/benches/gateway_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libgateway_throughput-7811941d438cbab8.rmeta: crates/bench/benches/gateway_throughput.rs Cargo.toml

crates/bench/benches/gateway_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
