/root/repo/target/debug/deps/gateway_fleet-e2524d857a3876e3.d: tests/gateway_fleet.rs

/root/repo/target/debug/deps/gateway_fleet-e2524d857a3876e3: tests/gateway_fleet.rs

tests/gateway_fleet.rs:
