/root/repo/target/debug/deps/encryption_overhead-c6230f54675c1add.d: crates/bench/benches/encryption_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libencryption_overhead-c6230f54675c1add.rmeta: crates/bench/benches/encryption_overhead.rs Cargo.toml

crates/bench/benches/encryption_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
