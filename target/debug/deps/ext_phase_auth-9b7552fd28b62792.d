/root/repo/target/debug/deps/ext_phase_auth-9b7552fd28b62792.d: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

/root/repo/target/debug/deps/libext_phase_auth-9b7552fd28b62792.rmeta: crates/bench/src/bin/ext_phase_auth.rs Cargo.toml

crates/bench/src/bin/ext_phase_auth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
