/root/repo/target/debug/deps/exp_auth_accuracy-f84452c56a20d6e5.d: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_auth_accuracy-f84452c56a20d6e5.rmeta: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

crates/bench/src/bin/exp_auth_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
