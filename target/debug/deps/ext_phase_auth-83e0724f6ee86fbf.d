/root/repo/target/debug/deps/ext_phase_auth-83e0724f6ee86fbf.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/debug/deps/ext_phase_auth-83e0724f6ee86fbf: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
