/root/repo/target/debug/deps/medsen_phone-ebf550cfdc7727d9.d: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/debug/deps/medsen_phone-ebf550cfdc7727d9: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

crates/phone/src/lib.rs:
crates/phone/src/app.rs:
crates/phone/src/compress.rs:
crates/phone/src/csv.rs:
crates/phone/src/frame.rs:
crates/phone/src/json.rs:
crates/phone/src/network.rs:
crates/phone/src/profile.rs:
