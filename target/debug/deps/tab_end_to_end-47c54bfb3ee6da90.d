/root/repo/target/debug/deps/tab_end_to_end-47c54bfb3ee6da90.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/debug/deps/tab_end_to_end-47c54bfb3ee6da90: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
