/root/repo/target/debug/deps/gateway_throughput-656c05c68a6b3dc5.d: crates/bench/benches/gateway_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libgateway_throughput-656c05c68a6b3dc5.rmeta: crates/bench/benches/gateway_throughput.rs Cargo.toml

crates/bench/benches/gateway_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
