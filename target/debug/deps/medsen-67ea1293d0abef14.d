/root/repo/target/debug/deps/medsen-67ea1293d0abef14.d: src/lib.rs

/root/repo/target/debug/deps/medsen-67ea1293d0abef14: src/lib.rs

src/lib.rs:
