/root/repo/target/debug/deps/ablation_key_schedule-615f604c619c2668.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/debug/deps/ablation_key_schedule-615f604c619c2668: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
