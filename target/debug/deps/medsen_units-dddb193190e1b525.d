/root/repo/target/debug/deps/medsen_units-dddb193190e1b525.d: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/debug/deps/libmedsen_units-dddb193190e1b525.rlib: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/debug/deps/libmedsen_units-dddb193190e1b525.rmeta: crates/units/src/lib.rs crates/units/src/quantity.rs

crates/units/src/lib.rs:
crates/units/src/quantity.rs:
