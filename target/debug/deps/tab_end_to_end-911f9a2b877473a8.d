/root/repo/target/debug/deps/tab_end_to_end-911f9a2b877473a8.d: crates/bench/src/bin/tab_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtab_end_to_end-911f9a2b877473a8.rmeta: crates/bench/src/bin/tab_end_to_end.rs Cargo.toml

crates/bench/src/bin/tab_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
