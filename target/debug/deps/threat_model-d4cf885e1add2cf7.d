/root/repo/target/debug/deps/threat_model-d4cf885e1add2cf7.d: tests/threat_model.rs

/root/repo/target/debug/deps/threat_model-d4cf885e1add2cf7: tests/threat_model.rs

tests/threat_model.rs:
