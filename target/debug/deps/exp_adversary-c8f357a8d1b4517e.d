/root/repo/target/debug/deps/exp_adversary-c8f357a8d1b4517e.d: crates/bench/src/bin/exp_adversary.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adversary-c8f357a8d1b4517e.rmeta: crates/bench/src/bin/exp_adversary.rs Cargo.toml

crates/bench/src/bin/exp_adversary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
