/root/repo/target/debug/deps/medsen-62dda84aabd56c76.d: src/lib.rs

/root/repo/target/debug/deps/medsen-62dda84aabd56c76: src/lib.rs

src/lib.rs:
