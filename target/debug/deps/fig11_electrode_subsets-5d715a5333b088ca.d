/root/repo/target/debug/deps/fig11_electrode_subsets-5d715a5333b088ca.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/debug/deps/fig11_electrode_subsets-5d715a5333b088ca: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
