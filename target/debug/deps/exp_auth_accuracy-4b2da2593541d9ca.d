/root/repo/target/debug/deps/exp_auth_accuracy-4b2da2593541d9ca.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/debug/deps/exp_auth_accuracy-4b2da2593541d9ca: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
