/root/repo/target/debug/deps/properties-7bd4a728c3ac4181.d: crates/microfluidics/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7bd4a728c3ac4181.rmeta: crates/microfluidics/tests/properties.rs Cargo.toml

crates/microfluidics/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
