/root/repo/target/debug/deps/fig13_bead_counts_358-1d5a62d12a7a9f8e.d: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_bead_counts_358-1d5a62d12a7a9f8e.rmeta: crates/bench/src/bin/fig13_bead_counts_358.rs Cargo.toml

crates/bench/src/bin/fig13_bead_counts_358.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
