/root/repo/target/debug/deps/ablation_gain_bits-5c189665f870f993.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/debug/deps/ablation_gain_bits-5c189665f870f993: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
