/root/repo/target/debug/deps/phone_relay-c107c32755885b74.d: tests/phone_relay.rs

/root/repo/target/debug/deps/phone_relay-c107c32755885b74: tests/phone_relay.rs

tests/phone_relay.rs:
