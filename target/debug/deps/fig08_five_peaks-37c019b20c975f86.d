/root/repo/target/debug/deps/fig08_five_peaks-37c019b20c975f86.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/debug/deps/fig08_five_peaks-37c019b20c975f86: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
