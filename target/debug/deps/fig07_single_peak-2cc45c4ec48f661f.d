/root/repo/target/debug/deps/fig07_single_peak-2cc45c4ec48f661f.d: crates/bench/src/bin/fig07_single_peak.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_single_peak-2cc45c4ec48f661f.rmeta: crates/bench/src/bin/fig07_single_peak.rs Cargo.toml

crates/bench/src/bin/fig07_single_peak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
