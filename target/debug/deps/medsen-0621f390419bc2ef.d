/root/repo/target/debug/deps/medsen-0621f390419bc2ef.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen-0621f390419bc2ef.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
