/root/repo/target/debug/deps/ablation_gain_bits-7d706d8e94420d48.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/debug/deps/ablation_gain_bits-7d706d8e94420d48: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
