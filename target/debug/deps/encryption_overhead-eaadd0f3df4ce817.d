/root/repo/target/debug/deps/encryption_overhead-eaadd0f3df4ce817.d: crates/bench/benches/encryption_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libencryption_overhead-eaadd0f3df4ce817.rmeta: crates/bench/benches/encryption_overhead.rs Cargo.toml

crates/bench/benches/encryption_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
