/root/repo/target/debug/deps/figures_smoke-307f0c45e4f36c32.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-307f0c45e4f36c32: tests/figures_smoke.rs

tests/figures_smoke.rs:
