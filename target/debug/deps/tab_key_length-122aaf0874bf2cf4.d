/root/repo/target/debug/deps/tab_key_length-122aaf0874bf2cf4.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/debug/deps/tab_key_length-122aaf0874bf2cf4: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
