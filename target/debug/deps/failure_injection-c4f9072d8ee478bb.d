/root/repo/target/debug/deps/failure_injection-c4f9072d8ee478bb.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-c4f9072d8ee478bb: tests/failure_injection.rs

tests/failure_injection.rs:
