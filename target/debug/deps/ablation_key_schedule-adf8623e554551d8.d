/root/repo/target/debug/deps/ablation_key_schedule-adf8623e554551d8.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/debug/deps/ablation_key_schedule-adf8623e554551d8: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
