/root/repo/target/debug/deps/medsen-28b763624001e8dc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen-28b763624001e8dc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
