/root/repo/target/debug/deps/medsen_runtime-f7adfd6a13da75a3.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

/root/repo/target/debug/deps/medsen_runtime-f7adfd6a13da75a3: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/task.rs:
crates/runtime/src/timer.rs:
