/root/repo/target/debug/deps/medsen_cli-fd8c6a7786a87a4f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_cli-fd8c6a7786a87a4f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
