/root/repo/target/debug/deps/properties-8128a43eee196c29.d: crates/sensor/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8128a43eee196c29.rmeta: crates/sensor/tests/properties.rs Cargo.toml

crates/sensor/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
