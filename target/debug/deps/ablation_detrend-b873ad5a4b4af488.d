/root/repo/target/debug/deps/ablation_detrend-b873ad5a4b4af488.d: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_detrend-b873ad5a4b4af488.rmeta: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

crates/bench/src/bin/ablation_detrend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
