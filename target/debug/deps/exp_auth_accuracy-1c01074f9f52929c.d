/root/repo/target/debug/deps/exp_auth_accuracy-1c01074f9f52929c.d: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_auth_accuracy-1c01074f9f52929c.rmeta: crates/bench/src/bin/exp_auth_accuracy.rs Cargo.toml

crates/bench/src/bin/exp_auth_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
