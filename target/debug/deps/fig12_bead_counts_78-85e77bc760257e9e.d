/root/repo/target/debug/deps/fig12_bead_counts_78-85e77bc760257e9e.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/debug/deps/fig12_bead_counts_78-85e77bc760257e9e: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
