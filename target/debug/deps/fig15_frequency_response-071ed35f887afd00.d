/root/repo/target/debug/deps/fig15_frequency_response-071ed35f887afd00.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/debug/deps/fig15_frequency_response-071ed35f887afd00: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
