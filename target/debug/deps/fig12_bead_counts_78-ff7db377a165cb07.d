/root/repo/target/debug/deps/fig12_bead_counts_78-ff7db377a165cb07.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/debug/deps/fig12_bead_counts_78-ff7db377a165cb07: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
