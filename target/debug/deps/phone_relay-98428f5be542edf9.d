/root/repo/target/debug/deps/phone_relay-98428f5be542edf9.d: tests/phone_relay.rs

/root/repo/target/debug/deps/phone_relay-98428f5be542edf9: tests/phone_relay.rs

tests/phone_relay.rs:
