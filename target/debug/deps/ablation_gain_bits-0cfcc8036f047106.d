/root/repo/target/debug/deps/ablation_gain_bits-0cfcc8036f047106.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/debug/deps/ablation_gain_bits-0cfcc8036f047106: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
