/root/repo/target/debug/deps/properties-8161b6196f0b218d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8161b6196f0b218d: tests/properties.rs

tests/properties.rs:
