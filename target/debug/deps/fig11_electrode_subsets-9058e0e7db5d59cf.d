/root/repo/target/debug/deps/fig11_electrode_subsets-9058e0e7db5d59cf.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/debug/deps/fig11_electrode_subsets-9058e0e7db5d59cf: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
