/root/repo/target/debug/deps/gateway_fleet-5419338f46473e04.d: tests/gateway_fleet.rs

/root/repo/target/debug/deps/gateway_fleet-5419338f46473e04: tests/gateway_fleet.rs

tests/gateway_fleet.rs:
