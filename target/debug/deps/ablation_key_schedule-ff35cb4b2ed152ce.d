/root/repo/target/debug/deps/ablation_key_schedule-ff35cb4b2ed152ce.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/debug/deps/ablation_key_schedule-ff35cb4b2ed152ce: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
