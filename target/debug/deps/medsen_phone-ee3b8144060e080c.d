/root/repo/target/debug/deps/medsen_phone-ee3b8144060e080c.d: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/debug/deps/libmedsen_phone-ee3b8144060e080c.rlib: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/debug/deps/libmedsen_phone-ee3b8144060e080c.rmeta: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

crates/phone/src/lib.rs:
crates/phone/src/app.rs:
crates/phone/src/compress.rs:
crates/phone/src/csv.rs:
crates/phone/src/frame.rs:
crates/phone/src/json.rs:
crates/phone/src/network.rs:
crates/phone/src/profile.rs:
