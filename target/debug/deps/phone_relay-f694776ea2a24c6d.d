/root/repo/target/debug/deps/phone_relay-f694776ea2a24c6d.d: tests/phone_relay.rs Cargo.toml

/root/repo/target/debug/deps/libphone_relay-f694776ea2a24c6d.rmeta: tests/phone_relay.rs Cargo.toml

tests/phone_relay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
