/root/repo/target/debug/deps/medsen_bench-cffc124258b4c98b.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation_detrend.rs crates/bench/src/experiments/ablation_gains.rs crates/bench/src/experiments/ablation_keys.rs crates/bench/src/experiments/adversary.rs crates/bench/src/experiments/auth_accuracy.rs crates/bench/src/experiments/bead_counts.rs crates/bench/src/experiments/end_to_end.rs crates/bench/src/experiments/ext_phase.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/key_length.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmedsen_bench-cffc124258b4c98b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation_detrend.rs crates/bench/src/experiments/ablation_gains.rs crates/bench/src/experiments/ablation_keys.rs crates/bench/src/experiments/adversary.rs crates/bench/src/experiments/auth_accuracy.rs crates/bench/src/experiments/bead_counts.rs crates/bench/src/experiments/end_to_end.rs crates/bench/src/experiments/ext_phase.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/key_length.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmedsen_bench-cffc124258b4c98b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation_detrend.rs crates/bench/src/experiments/ablation_gains.rs crates/bench/src/experiments/ablation_keys.rs crates/bench/src/experiments/adversary.rs crates/bench/src/experiments/auth_accuracy.rs crates/bench/src/experiments/bead_counts.rs crates/bench/src/experiments/end_to_end.rs crates/bench/src/experiments/ext_phase.rs crates/bench/src/experiments/fig07.rs crates/bench/src/experiments/fig08.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/key_length.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation_detrend.rs:
crates/bench/src/experiments/ablation_gains.rs:
crates/bench/src/experiments/ablation_keys.rs:
crates/bench/src/experiments/adversary.rs:
crates/bench/src/experiments/auth_accuracy.rs:
crates/bench/src/experiments/bead_counts.rs:
crates/bench/src/experiments/end_to_end.rs:
crates/bench/src/experiments/ext_phase.rs:
crates/bench/src/experiments/fig07.rs:
crates/bench/src/experiments/fig08.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig14.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig16.rs:
crates/bench/src/experiments/key_length.rs:
crates/bench/src/table.rs:
