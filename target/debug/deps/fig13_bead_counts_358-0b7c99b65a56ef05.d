/root/repo/target/debug/deps/fig13_bead_counts_358-0b7c99b65a56ef05.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/debug/deps/fig13_bead_counts_358-0b7c99b65a56ef05: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
