/root/repo/target/debug/deps/ablation_detrend-5c89474a27f2fca7.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/debug/deps/ablation_detrend-5c89474a27f2fca7: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
