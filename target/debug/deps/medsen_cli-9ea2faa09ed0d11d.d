/root/repo/target/debug/deps/medsen_cli-9ea2faa09ed0d11d.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/medsen_cli-9ea2faa09ed0d11d: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
