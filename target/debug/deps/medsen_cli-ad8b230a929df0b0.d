/root/repo/target/debug/deps/medsen_cli-ad8b230a929df0b0.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-ad8b230a929df0b0.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-ad8b230a929df0b0.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
