/root/repo/target/debug/deps/ablation_gain_bits-010894c2306f70f1.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/debug/deps/ablation_gain_bits-010894c2306f70f1: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
