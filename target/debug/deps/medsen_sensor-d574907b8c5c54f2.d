/root/repo/target/debug/deps/medsen_sensor-d574907b8c5c54f2.d: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/debug/deps/libmedsen_sensor-d574907b8c5c54f2.rlib: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/debug/deps/libmedsen_sensor-d574907b8c5c54f2.rmeta: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

crates/sensor/src/lib.rs:
crates/sensor/src/acquisition.rs:
crates/sensor/src/array.rs:
crates/sensor/src/controller.rs:
crates/sensor/src/decrypt.rs:
crates/sensor/src/keying.rs:
crates/sensor/src/mux.rs:
crates/sensor/src/tcb.rs:
