/root/repo/target/debug/deps/fig15_frequency_response-4cf1f21e7609d8ac.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/debug/deps/fig15_frequency_response-4cf1f21e7609d8ac: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
