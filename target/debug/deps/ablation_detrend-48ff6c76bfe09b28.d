/root/repo/target/debug/deps/ablation_detrend-48ff6c76bfe09b28.d: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_detrend-48ff6c76bfe09b28.rmeta: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

crates/bench/src/bin/ablation_detrend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
