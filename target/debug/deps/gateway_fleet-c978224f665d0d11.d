/root/repo/target/debug/deps/gateway_fleet-c978224f665d0d11.d: tests/gateway_fleet.rs

/root/repo/target/debug/deps/gateway_fleet-c978224f665d0d11: tests/gateway_fleet.rs

tests/gateway_fleet.rs:
