/root/repo/target/debug/deps/medsen-a988fae62cc95b9e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen-a988fae62cc95b9e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
