/root/repo/target/debug/deps/idle_sessions-035db9ac3fe2f4cd.d: crates/runtime/tests/idle_sessions.rs Cargo.toml

/root/repo/target/debug/deps/libidle_sessions-035db9ac3fe2f4cd.rmeta: crates/runtime/tests/idle_sessions.rs Cargo.toml

crates/runtime/tests/idle_sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
