/root/repo/target/debug/deps/fig14_perf-75295665be2b24b6.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/debug/deps/fig14_perf-75295665be2b24b6: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
