/root/repo/target/debug/deps/medsen_cli-e1e69cce47fd4d73.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-e1e69cce47fd4d73: crates/cli/src/main.rs

crates/cli/src/main.rs:
