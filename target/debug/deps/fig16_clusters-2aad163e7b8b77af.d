/root/repo/target/debug/deps/fig16_clusters-2aad163e7b8b77af.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/debug/deps/fig16_clusters-2aad163e7b8b77af: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
