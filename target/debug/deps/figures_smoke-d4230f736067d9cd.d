/root/repo/target/debug/deps/figures_smoke-d4230f736067d9cd.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-d4230f736067d9cd: tests/figures_smoke.rs

tests/figures_smoke.rs:
