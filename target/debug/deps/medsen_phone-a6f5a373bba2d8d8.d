/root/repo/target/debug/deps/medsen_phone-a6f5a373bba2d8d8.d: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_phone-a6f5a373bba2d8d8.rmeta: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs Cargo.toml

crates/phone/src/lib.rs:
crates/phone/src/app.rs:
crates/phone/src/compress.rs:
crates/phone/src/csv.rs:
crates/phone/src/frame.rs:
crates/phone/src/json.rs:
crates/phone/src/network.rs:
crates/phone/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
