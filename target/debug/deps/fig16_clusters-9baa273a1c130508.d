/root/repo/target/debug/deps/fig16_clusters-9baa273a1c130508.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/debug/deps/fig16_clusters-9baa273a1c130508: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
