/root/repo/target/debug/deps/medsen_gateway-77176106e6db8b1a.d: crates/gateway/src/lib.rs

/root/repo/target/debug/deps/libmedsen_gateway-77176106e6db8b1a.rlib: crates/gateway/src/lib.rs

/root/repo/target/debug/deps/libmedsen_gateway-77176106e6db8b1a.rmeta: crates/gateway/src/lib.rs

crates/gateway/src/lib.rs:
