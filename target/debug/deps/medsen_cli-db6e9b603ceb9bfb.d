/root/repo/target/debug/deps/medsen_cli-db6e9b603ceb9bfb.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-db6e9b603ceb9bfb.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-db6e9b603ceb9bfb.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
