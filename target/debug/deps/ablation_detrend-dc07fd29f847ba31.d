/root/repo/target/debug/deps/ablation_detrend-dc07fd29f847ba31.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/debug/deps/ablation_detrend-dc07fd29f847ba31: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
