/root/repo/target/debug/deps/practitioner_sharing-695c698cd2a1e2ad.d: tests/practitioner_sharing.rs

/root/repo/target/debug/deps/practitioner_sharing-695c698cd2a1e2ad: tests/practitioner_sharing.rs

tests/practitioner_sharing.rs:
