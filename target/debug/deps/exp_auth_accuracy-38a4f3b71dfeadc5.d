/root/repo/target/debug/deps/exp_auth_accuracy-38a4f3b71dfeadc5.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/debug/deps/exp_auth_accuracy-38a4f3b71dfeadc5: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
