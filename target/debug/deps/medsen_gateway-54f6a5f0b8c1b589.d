/root/repo/target/debug/deps/medsen_gateway-54f6a5f0b8c1b589.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libmedsen_gateway-54f6a5f0b8c1b589.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs Cargo.toml

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
