/root/repo/target/debug/deps/end_to_end-3ae840907bee0717.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3ae840907bee0717: tests/end_to_end.rs

tests/end_to_end.rs:
