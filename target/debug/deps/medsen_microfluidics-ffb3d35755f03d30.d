/root/repo/target/debug/deps/medsen_microfluidics-ffb3d35755f03d30.d: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

/root/repo/target/debug/deps/libmedsen_microfluidics-ffb3d35755f03d30.rlib: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

/root/repo/target/debug/deps/libmedsen_microfluidics-ffb3d35755f03d30.rmeta: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

crates/microfluidics/src/lib.rs:
crates/microfluidics/src/geometry.rs:
crates/microfluidics/src/losses.rs:
crates/microfluidics/src/mixing.rs:
crates/microfluidics/src/particle.rs:
crates/microfluidics/src/pump.rs:
crates/microfluidics/src/sample.rs:
crates/microfluidics/src/stochastic.rs:
crates/microfluidics/src/transport.rs:
