/root/repo/target/debug/deps/tab_key_length-95c853fde8b7c1fe.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/debug/deps/tab_key_length-95c853fde8b7c1fe: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
