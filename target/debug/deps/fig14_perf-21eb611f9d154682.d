/root/repo/target/debug/deps/fig14_perf-21eb611f9d154682.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/debug/deps/fig14_perf-21eb611f9d154682: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
