/root/repo/target/debug/deps/classifier-5c9f8dff1c3bda4b.d: crates/bench/benches/classifier.rs Cargo.toml

/root/repo/target/debug/deps/libclassifier-5c9f8dff1c3bda4b.rmeta: crates/bench/benches/classifier.rs Cargo.toml

crates/bench/benches/classifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
