/root/repo/target/debug/deps/compression-71a2d97610e356b0.d: crates/bench/benches/compression.rs Cargo.toml

/root/repo/target/debug/deps/libcompression-71a2d97610e356b0.rmeta: crates/bench/benches/compression.rs Cargo.toml

crates/bench/benches/compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
