/root/repo/target/debug/deps/medsen-9b59029ad87b4d3d.d: src/lib.rs

/root/repo/target/debug/deps/libmedsen-9b59029ad87b4d3d.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsen-9b59029ad87b4d3d.rmeta: src/lib.rs

src/lib.rs:
