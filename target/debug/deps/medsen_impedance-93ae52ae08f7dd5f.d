/root/repo/target/debug/deps/medsen_impedance-93ae52ae08f7dd5f.d: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/debug/deps/libmedsen_impedance-93ae52ae08f7dd5f.rlib: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/debug/deps/libmedsen_impedance-93ae52ae08f7dd5f.rmeta: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

crates/impedance/src/lib.rs:
crates/impedance/src/circuit.rs:
crates/impedance/src/excitation.rs:
crates/impedance/src/lockin.rs:
crates/impedance/src/noise.rs:
crates/impedance/src/pulse.rs:
crates/impedance/src/synth.rs:
crates/impedance/src/trace.rs:
