/root/repo/target/debug/deps/medsen_gateway-3c24630fd2f68415.d: crates/gateway/src/lib.rs

/root/repo/target/debug/deps/libmedsen_gateway-3c24630fd2f68415.rlib: crates/gateway/src/lib.rs

/root/repo/target/debug/deps/libmedsen_gateway-3c24630fd2f68415.rmeta: crates/gateway/src/lib.rs

crates/gateway/src/lib.rs:
