/root/repo/target/debug/deps/ablation_detrend-a4879a44acadaa84.d: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_detrend-a4879a44acadaa84.rmeta: crates/bench/src/bin/ablation_detrend.rs Cargo.toml

crates/bench/src/bin/ablation_detrend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
