/root/repo/target/debug/deps/stress_3h-6baf93a55d458397.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/debug/deps/stress_3h-6baf93a55d458397: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
