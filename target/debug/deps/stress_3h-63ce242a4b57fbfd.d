/root/repo/target/debug/deps/stress_3h-63ce242a4b57fbfd.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/debug/deps/stress_3h-63ce242a4b57fbfd: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
