/root/repo/target/debug/deps/figures_smoke-ca54e637b4f48b6e.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-ca54e637b4f48b6e: tests/figures_smoke.rs

tests/figures_smoke.rs:
