/root/repo/target/debug/deps/medsen_cli-a95b70f10dc370b4.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-a95b70f10dc370b4.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libmedsen_cli-a95b70f10dc370b4.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
