/root/repo/target/debug/deps/fig13_bead_counts_358-d838cfbff8a58644.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/debug/deps/fig13_bead_counts_358-d838cfbff8a58644: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
