/root/repo/target/debug/deps/ext_phase_auth-d3fa7d6db5b88c22.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/debug/deps/ext_phase_auth-d3fa7d6db5b88c22: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
