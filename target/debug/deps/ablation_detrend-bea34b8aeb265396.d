/root/repo/target/debug/deps/ablation_detrend-bea34b8aeb265396.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/debug/deps/ablation_detrend-bea34b8aeb265396: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
