/root/repo/target/debug/deps/stress_3h-e27b296095098b79.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/debug/deps/stress_3h-e27b296095098b79: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
