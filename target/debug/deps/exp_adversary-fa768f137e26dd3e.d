/root/repo/target/debug/deps/exp_adversary-fa768f137e26dd3e.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/debug/deps/exp_adversary-fa768f137e26dd3e: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
