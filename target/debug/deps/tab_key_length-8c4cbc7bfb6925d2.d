/root/repo/target/debug/deps/tab_key_length-8c4cbc7bfb6925d2.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/debug/deps/tab_key_length-8c4cbc7bfb6925d2: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
