/root/repo/target/debug/examples/password_provisioning-a1ecd984c30e3892.d: examples/password_provisioning.rs Cargo.toml

/root/repo/target/debug/examples/libpassword_provisioning-a1ecd984c30e3892.rmeta: examples/password_provisioning.rs Cargo.toml

examples/password_provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
