/root/repo/target/debug/examples/adversary_audit-bcf1ebdb699ad90f.d: examples/adversary_audit.rs Cargo.toml

/root/repo/target/debug/examples/libadversary_audit-bcf1ebdb699ad90f.rmeta: examples/adversary_audit.rs Cargo.toml

examples/adversary_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
