/root/repo/target/debug/examples/quickstart-b31a80bd4c25dde4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b31a80bd4c25dde4: examples/quickstart.rs

examples/quickstart.rs:
