/root/repo/target/debug/examples/hiv_monitoring-769aec87e9bce66f.d: examples/hiv_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libhiv_monitoring-769aec87e9bce66f.rmeta: examples/hiv_monitoring.rs Cargo.toml

examples/hiv_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
