/root/repo/target/debug/examples/clinic_fleet-f23baf824ea6ac7b.d: examples/clinic_fleet.rs

/root/repo/target/debug/examples/clinic_fleet-f23baf824ea6ac7b: examples/clinic_fleet.rs

examples/clinic_fleet.rs:
