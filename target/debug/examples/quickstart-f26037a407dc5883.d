/root/repo/target/debug/examples/quickstart-f26037a407dc5883.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f26037a407dc5883: examples/quickstart.rs

examples/quickstart.rs:
