/root/repo/target/debug/examples/hiv_monitoring-c4d1fa7278a851d9.d: examples/hiv_monitoring.rs

/root/repo/target/debug/examples/hiv_monitoring-c4d1fa7278a851d9: examples/hiv_monitoring.rs

examples/hiv_monitoring.rs:
