/root/repo/target/debug/examples/quickstart-a267b7541e9d269d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a267b7541e9d269d: examples/quickstart.rs

examples/quickstart.rs:
