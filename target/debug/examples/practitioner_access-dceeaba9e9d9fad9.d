/root/repo/target/debug/examples/practitioner_access-dceeaba9e9d9fad9.d: examples/practitioner_access.rs

/root/repo/target/debug/examples/practitioner_access-dceeaba9e9d9fad9: examples/practitioner_access.rs

examples/practitioner_access.rs:
