/root/repo/target/debug/examples/clinic_fleet-e3005531e33f481e.d: examples/clinic_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libclinic_fleet-e3005531e33f481e.rmeta: examples/clinic_fleet.rs Cargo.toml

examples/clinic_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
