/root/repo/target/debug/examples/adversary_audit-a8d03f58371e9dd8.d: examples/adversary_audit.rs Cargo.toml

/root/repo/target/debug/examples/libadversary_audit-a8d03f58371e9dd8.rmeta: examples/adversary_audit.rs Cargo.toml

examples/adversary_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
