/root/repo/target/debug/examples/hiv_monitoring-bcd694c6b2b38940.d: examples/hiv_monitoring.rs

/root/repo/target/debug/examples/hiv_monitoring-bcd694c6b2b38940: examples/hiv_monitoring.rs

examples/hiv_monitoring.rs:
