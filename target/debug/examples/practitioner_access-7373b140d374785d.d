/root/repo/target/debug/examples/practitioner_access-7373b140d374785d.d: examples/practitioner_access.rs Cargo.toml

/root/repo/target/debug/examples/libpractitioner_access-7373b140d374785d.rmeta: examples/practitioner_access.rs Cargo.toml

examples/practitioner_access.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
