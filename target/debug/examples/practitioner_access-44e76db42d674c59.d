/root/repo/target/debug/examples/practitioner_access-44e76db42d674c59.d: examples/practitioner_access.rs Cargo.toml

/root/repo/target/debug/examples/libpractitioner_access-44e76db42d674c59.rmeta: examples/practitioner_access.rs Cargo.toml

examples/practitioner_access.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
