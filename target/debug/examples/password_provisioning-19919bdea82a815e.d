/root/repo/target/debug/examples/password_provisioning-19919bdea82a815e.d: examples/password_provisioning.rs

/root/repo/target/debug/examples/password_provisioning-19919bdea82a815e: examples/password_provisioning.rs

examples/password_provisioning.rs:
