/root/repo/target/debug/examples/adversary_audit-d085aca018762411.d: examples/adversary_audit.rs

/root/repo/target/debug/examples/adversary_audit-d085aca018762411: examples/adversary_audit.rs

examples/adversary_audit.rs:
