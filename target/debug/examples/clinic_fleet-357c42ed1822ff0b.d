/root/repo/target/debug/examples/clinic_fleet-357c42ed1822ff0b.d: examples/clinic_fleet.rs

/root/repo/target/debug/examples/clinic_fleet-357c42ed1822ff0b: examples/clinic_fleet.rs

examples/clinic_fleet.rs:
