/root/repo/target/debug/examples/practitioner_access-5de14f8b0791fb4d.d: examples/practitioner_access.rs

/root/repo/target/debug/examples/practitioner_access-5de14f8b0791fb4d: examples/practitioner_access.rs

examples/practitioner_access.rs:
