/root/repo/target/debug/examples/password_provisioning-82651860089b4d4e.d: examples/password_provisioning.rs

/root/repo/target/debug/examples/password_provisioning-82651860089b4d4e: examples/password_provisioning.rs

examples/password_provisioning.rs:
