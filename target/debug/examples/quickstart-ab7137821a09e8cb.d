/root/repo/target/debug/examples/quickstart-ab7137821a09e8cb.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ab7137821a09e8cb.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
