/root/repo/target/debug/examples/adversary_audit-9be1db1ecd0f36ba.d: examples/adversary_audit.rs

/root/repo/target/debug/examples/adversary_audit-9be1db1ecd0f36ba: examples/adversary_audit.rs

examples/adversary_audit.rs:
