/root/repo/target/debug/examples/quickstart-e3192bf83f4aceae.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e3192bf83f4aceae.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
