/root/repo/target/debug/examples/hiv_monitoring-1b364e734fb165c6.d: examples/hiv_monitoring.rs

/root/repo/target/debug/examples/hiv_monitoring-1b364e734fb165c6: examples/hiv_monitoring.rs

examples/hiv_monitoring.rs:
