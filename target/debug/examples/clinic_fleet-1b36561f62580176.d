/root/repo/target/debug/examples/clinic_fleet-1b36561f62580176.d: examples/clinic_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libclinic_fleet-1b36561f62580176.rmeta: examples/clinic_fleet.rs Cargo.toml

examples/clinic_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
