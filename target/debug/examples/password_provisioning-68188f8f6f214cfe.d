/root/repo/target/debug/examples/password_provisioning-68188f8f6f214cfe.d: examples/password_provisioning.rs

/root/repo/target/debug/examples/password_provisioning-68188f8f6f214cfe: examples/password_provisioning.rs

examples/password_provisioning.rs:
