/root/repo/target/debug/examples/adversary_audit-1e0ddb90afd159b2.d: examples/adversary_audit.rs

/root/repo/target/debug/examples/adversary_audit-1e0ddb90afd159b2: examples/adversary_audit.rs

examples/adversary_audit.rs:
