/root/repo/target/debug/examples/practitioner_access-842c3d0a3017fa91.d: examples/practitioner_access.rs

/root/repo/target/debug/examples/practitioner_access-842c3d0a3017fa91: examples/practitioner_access.rs

examples/practitioner_access.rs:
